//! Workspace integration tests: exercise the whole stack through the
//! facade crate — several applications composed in one SPMD job, counters
//! as a verification channel, end-to-end determinism.

use ppm::apps::barnes_hut::{self as bh, BhParams};
use ppm::apps::cg::{self, CgParams};
use ppm::apps::matgen::{self, MatGenParams};
use ppm::core::PpmConfig;
use ppm::simnet::MachineConfig;

#[test]
fn three_applications_compose_in_one_job() {
    // One SPMD program that runs all three applications back to back on
    // the same node runtime — allocations, phases, and node collectives
    // from different apps must not interfere.
    let cgp = CgParams::cube(6, 10);
    let mgp = MatGenParams::new(3, 8);
    let mut bhp = BhParams::new(128);
    bhp.steps = 1;

    let cg_ref = cg::seq::solve(&cgp);
    let mg_ref = matgen::seq::generate(&mgp);
    let bh_ref = bh::seq::simulate(&bhp);

    let report = ppm::core::run(PpmConfig::franklin(2), move |node| {
        let (cg_out, _) = cg::ppm::solve(node, &cgp);
        let (mg_out, _) = matgen::ppm::generate(node, &mgp);
        let (bh_out, _) = bh::ppm::simulate(node, &bhp);
        (cg_out.rr, mg_out, bh_out)
    });
    for (rr, mg, bodies) in &report.results {
        assert!((rr - cg_ref.rr).abs() <= 1e-9 * (1.0 + cg_ref.rr));
        assert_eq!(mg, &mg_ref);
        assert_eq!(
            bodies.iter().map(|b| b.x.to_bits()).collect::<Vec<_>>(),
            bh_ref.iter().map(|b| b.x.to_bits()).collect::<Vec<_>>()
        );
    }
}

#[test]
fn bundling_counters_tell_the_papers_story() {
    // The runtime must turn huge numbers of fine-grained accesses into few
    // coarse messages — the §3.3 capability the applications rely on.
    let mut p = BhParams::new(512);
    p.steps = 1;
    let report = ppm::core::run(PpmConfig::franklin(4), move |node| {
        bh::ppm::simulate(node, &p);
        node.ep_counters()
    });
    let c = report
        .counters
        .iter()
        .fold(ppm::simnet::Counters::default(), |a, b| a.merge(b));
    assert!(
        c.remote_gets > 10_000,
        "fine-grained reads: {}",
        c.remote_gets
    );
    assert!(
        c.bundles_sent < c.remote_gets / 20,
        "bundling must compress: {} reads in {} bundles",
        c.remote_gets,
        c.bundles_sent
    );
}

#[test]
fn simulated_time_is_host_independent() {
    // Two runs of the same job — interleaved with unrelated load — give
    // bit-identical simulated clocks and results.
    let p = CgParams::cube(5, 8);
    let run_once = || {
        let pp = p;
        let report = ppm::core::run(PpmConfig::new(MachineConfig::new(3, 2)), move |node| {
            let (out, t) = cg::ppm::solve(node, &pp);
            (out.rr.to_bits(), t)
        });
        (report.results.clone(), report.makespan())
    };
    let a = run_once();
    // Unrelated host load between runs.
    let _noise = (0..500_000u64).fold(0u64, |a, i| a.wrapping_add(i.wrapping_mul(2654435761)));
    let b = run_once();
    assert_eq!(a, b);
}

#[test]
fn mpi_and_ppm_substrates_share_one_machine_model() {
    // The same machine config drives both substrates; their simulated
    // times must be on comparable scales for equal work (within 10x),
    // which guards against unit mistakes in either cost path.
    let p = MatGenParams::new(4, 8);
    let ppm_t = ppm::core::run(PpmConfig::franklin(2), move |node| {
        matgen::ppm::generate(node, &p).1
    })
    .results
    .into_iter()
    .fold(ppm::simnet::SimTime::ZERO, ppm::simnet::SimTime::max);
    let mpi_t = ppm::mps::run(MachineConfig::franklin(2), move |comm| {
        matgen::mpi::generate(comm, &p).1
    })
    .results
    .into_iter()
    .fold(ppm::simnet::SimTime::ZERO, ppm::simnet::SimTime::max);
    let ratio = ppm_t.as_ns_f64() / mpi_t.as_ns_f64();
    assert!((0.1..10.0).contains(&ratio), "ratio {ratio}");
}

#[test]
fn facade_reexports_are_usable() {
    // Spot-check the public API surface users would touch first.
    let cfg = PpmConfig::franklin(1);
    assert_eq!(cfg.nodes(), 1);
    let m = MachineConfig::new(2, 4);
    assert_eq!(m.total_cores(), 8);
    let report = ppm::core::run(cfg, |node| node.num_nodes());
    assert_eq!(report.results, vec![1]);
    let report = ppm::mps::run(m, |comm| comm.size());
    assert!(report.results.iter().all(|&s| s == 8));
}
