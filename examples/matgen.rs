//! Generate a multiscale-collocation sparse matrix with the PPM program
//! and verify it is bit-identical to the sequential and MPI versions.
//!
//! ```text
//! cargo run --release --example matgen
//! ```

use ppm::apps::matgen::{self, MatGenParams};
use ppm::core::PpmConfig;
use ppm::simnet::MachineConfig;

fn main() {
    let params = MatGenParams::new(6, 16);
    println!(
        "multiscale collocation matrix: {} levels, {} rows, {} nonzeros",
        params.levels,
        params.n(),
        params.nnz()
    );

    let seq = matgen::seq::generate(&params);

    let p = params;
    let ppm_report = ppm::core::run(PpmConfig::franklin(3), move |node| {
        matgen::ppm::generate(node, &p)
    });
    let (ppm_sums, ppm_t) = &ppm_report.results[0];
    assert_eq!(ppm_sums, &seq, "PPM must be bit-identical");

    let p = params;
    let mpi_report = ppm::mps::run(MachineConfig::franklin(3), move |comm| {
        matgen::mpi::generate(comm, &p)
    });
    let (mpi_sums, mpi_t) = &mpi_report.results[0];
    assert_eq!(mpi_sums, &seq, "MPI must be bit-identical");

    println!("PPM and MPI row sums bit-identical to sequential ✓");
    println!("simulated time: PPM {ppm_t} vs MPI {mpi_t} (3 nodes × 4 cores)");
    let checksum: f64 = seq.iter().map(|v| v.abs()).sum();
    println!("Σ|row sums| = {checksum:.6}");
}
