//! Solve the paper's diffusion system with the PPM CG solver and compare
//! against the sequential reference and the tuned MPI baseline.
//!
//! ```text
//! cargo run --release --example cg_solver
//! ```

use ppm::apps::cg::{self, CgParams};
use ppm::apps::stencil27::Stencil27;
use ppm::core::PpmConfig;
use ppm::simnet::MachineConfig;

fn main() {
    let params = CgParams {
        problem: Stencil27::chimney(10),
        iters: 30,
        rows_per_vp: 32,
        collect_x: true,
        tol: None,
        spmv_chunk: 0,
    };
    let n = params.problem.n();
    println!(
        "27-point diffusion chimney, {} unknowns, {} CG iterations",
        n, params.iters
    );

    let seq = cg::seq::solve(&params);
    println!(
        "sequential : ‖r‖² = {:.3e}, max|x−1| = {:.3e}",
        seq.rr,
        seq.max_error_vs_ones()
    );

    let p = params;
    let ppm_report = ppm::core::run(PpmConfig::franklin(4), move |node| cg::ppm::solve(node, &p));
    let (ppm_out, ppm_t) = &ppm_report.results[0];
    println!(
        "PPM (4×4)  : ‖r‖² = {:.3e}, max|x−1| = {:.3e}, simulated {}",
        ppm_out.rr,
        ppm_out.max_error_vs_ones(),
        ppm_t
    );

    let p = params;
    let mpi_report = ppm::mps::run(MachineConfig::franklin(4), move |comm| {
        cg::mpi::solve(comm, &p)
    });
    let (mpi_out, mpi_t) = &mpi_report.results[0];
    println!(
        "MPI (16 rk): ‖r‖² = {:.3e}, max|x−1| = {:.3e}, simulated {}",
        mpi_out.rr,
        mpi_out.max_error_vs_ones(),
        mpi_t
    );

    let dx = ppm_out
        .x
        .iter()
        .zip(&seq.x)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max);
    println!("max |x_ppm − x_seq| = {dx:.3e}");
    assert!(dx < 1e-8, "versions must agree");
    println!("PPM, MPI and sequential agree ✓");
}
