//! Demonstrates the dynamic phase-semantics conformance checker.
//!
//! Runs one buggy phase (every VP puts a different value to the same
//! global element) and one corrected phase (the same update expressed as
//! an `accumulate` combining write), printing the violations the checker
//! reports for each.
//!
//!     cargo run --release --example conformance

use ppm::core::{run, AccumOp, PpmConfig};
use ppm::simnet::MachineConfig;

fn main() {
    let cfg = || PpmConfig::new(MachineConfig::new(2, 2)).with_checker(true);

    println!("-- buggy phase: every VP puts its rank to element 5 --");
    let report = run(cfg(), |node| {
        let a = node.alloc_global::<i64>(8);
        node.ppm_do(3, move |vp| async move {
            let r = vp.global_rank() as i64;
            vp.global_phase(|ph| async move {
                ph.put(&a, 5, r);
            })
            .await;
        });
        (node.node_id(), node.take_violations())
    });
    for (node, violations) in &report.results {
        for v in violations {
            println!("node {node}: {v}");
        }
    }

    println!("\n-- fixed phase: the same update as a combining write --");
    let report = run(cfg(), |node| {
        let a = node.alloc_global::<i64>(8);
        node.ppm_do(3, move |vp| async move {
            let r = vp.global_rank() as i64;
            vp.global_phase(|ph| async move {
                ph.accumulate(&a, 5, AccumOp::Add, r);
            })
            .await;
        });
        let violations = node.take_violations();
        (node.gather_global(&a)[5], violations)
    });
    let (sum, violations) = &report.results[0];
    println!("violations: {violations:?}");
    println!("a[5] = {sum} (sum of global VP ranks 0..6 = 15)");
}
