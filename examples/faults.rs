//! Demonstrates deterministic fault injection and the reliable transport.
//!
//! Runs the paper's CG solver four ways — clean, under a seeded random
//! fault schedule (drops + duplicates + delays), with a targeted one-shot
//! drop of a specific write bundle, and with a seeded node crash recovered
//! at a phase boundary — and shows that the solution bits never change
//! while the retry/recovery counters and the simulated makespan do.
//!
//!     cargo run --release --example faults
//!     cargo run --release --example faults -- --fault-seed 7
//!     cargo run --release --example faults -- --trace faults.trace.json
//!
//! With `--trace <path>` (or `PPM_TRACE=<path>`), every scenario is
//! recorded as one process in a Chrome trace-event file — load it in
//! Perfetto to see the retransmission and crash-recovery events on each
//! node's track. A `<path>.metrics.json` per-phase report rides along.
//!
//! Equal seeds give equal runs: same retransmission counts, same makespan.

use ppm::apps::cg::{self, CgParams};
use ppm::core::{msgs, run, run_traced, PpmConfig, TraceSink};
use ppm::simnet::{Counters, FaultAction, FaultConfig, MachineConfig, SimTime, TargetedFault};

fn solve(cfg: PpmConfig, trace: Option<(&TraceSink, &str)>) -> (Vec<u64>, SimTime, Counters) {
    let mut p = CgParams::cube(8, 15);
    p.rows_per_vp = 16;
    let body = move |node: &mut ppm::core::NodeCtx<'_>| {
        let (out, _) = cg::ppm::solve(node, &p);
        let mut bits = vec![out.rr.to_bits()];
        bits.extend(out.x.iter().map(|v| v.to_bits()));
        bits
    };
    let report = match trace {
        Some((sink, label)) => run_traced(cfg, sink, label, body),
        None => run(cfg, body),
    };
    let makespan = report.makespan();
    let totals = report.total_counters();
    (
        report.results.into_iter().next().expect("node 0"),
        makespan,
        totals,
    )
}

fn report(label: &str, clean: &[u64], bits: &[u64], t: SimTime, c: &Counters) {
    let rel = c.reliability_summary();
    println!("{label}");
    println!("  makespan          {:>12.3} us", t.as_us_f64());
    println!("  retransmissions   {:>12}", rel.retries);
    println!("  faults dropped    {:>12}", rel.faults_dropped);
    println!("  faults duplicated {:>12}", rel.faults_duplicated);
    println!("  faults delayed    {:>12}", rel.faults_delayed);
    println!("  dups suppressed   {:>12}", rel.dups_suppressed);
    println!("  acks sent         {:>12}", rel.acks_sent);
    println!("  crash recoveries  {:>12}", rel.crash_recoveries);
    println!(
        "  solution          {}",
        if bits == clean {
            "bit-identical to the clean run"
        } else {
            "DIVERGED (reliability bug!)"
        }
    );
}

fn main() {
    let mut seed = 42u64;
    let mut trace_path = std::env::var("PPM_TRACE").ok();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--fault-seed" => {
                seed = args
                    .next()
                    .expect("--fault-seed needs a value")
                    .parse()
                    .expect("--fault-seed must be an integer");
            }
            "--trace" => {
                trace_path = Some(args.next().expect("--trace needs a path"));
            }
            other => {
                panic!("unknown argument {other} (supported: --fault-seed <u64>, --trace <path>)")
            }
        }
    }

    let sink = trace_path.as_ref().map(|_| TraceSink::new());
    let traced = |label: &'static str| sink.as_ref().map(|s| (s, label));

    let base = || PpmConfig::new(MachineConfig::new(3, 2));

    let (clean, clean_t, _) = solve(base(), traced("clean"));
    println!("clean run");
    println!("  makespan          {:>12.3} us", clean_t.as_us_f64());

    let faults = FaultConfig::seeded(seed, 0.05, 0.03, 0.03);
    let (bits, t, c) = solve(base().with_faults(faults), traced("seeded"));
    println!();
    report(
        &format!("seeded faults (seed {seed}: 5% drop, 3% dup, 3% delay)"),
        &clean,
        &bits,
        t,
        &c,
    );

    let targeted = FaultConfig::NONE.with_targeted(TargetedFault {
        src: 1,
        dst: 0,
        kind: msgs::K_WRITE,
        nth: 1,
        action: FaultAction::Drop,
    });
    let (bits, t, c) = solve(base().with_faults(targeted), traced("targeted"));
    println!();
    report(
        "targeted fault (drop the 1st write bundle from node 1 to node 0)",
        &clean,
        &bits,
        t,
        &c,
    );

    let crash = FaultConfig::NONE.with_crash(1, 3);
    let (bits, t, c) = solve(base().with_faults(crash), traced("crash"));
    println!();
    report(
        "node crash (node 1 dies at the end of global phase 3)",
        &clean,
        &bits,
        t,
        &c,
    );

    if let (Some(sink), Some(path)) = (&sink, &trace_path) {
        sink.write_files(path).expect("writing trace files");
        println!();
        println!("trace written to {path} (+ {path}.metrics.json)");
    }
}
