//! A short Barnes–Hut run on the PPM runtime: evolve a Plummer sphere,
//! verify the trajectories bit-for-bit against the sequential reference,
//! and show what the runtime did (bundles, waves, traffic).
//!
//! ```text
//! cargo run --release --example barnes_hut
//! ```

use ppm::apps::barnes_hut::{self as bh, BhParams};
use ppm::core::PpmConfig;

fn main() {
    let mut params = BhParams::new(2048);
    params.steps = 3;
    println!(
        "Barnes–Hut: {} bodies (Plummer), depth {}, θ={}, {} steps",
        params.n_bodies, params.max_depth, params.theta, params.steps
    );

    let reference = bh::seq::simulate(&params);

    let p = params;
    let report = ppm::core::run(PpmConfig::franklin(4), move |node| {
        let (bodies, t) = bh::ppm::simulate(node, &p);
        (bodies, t, node.ep_counters())
    });
    let (bodies, t, _) = &report.results[0];

    let max_dev = bodies
        .iter()
        .zip(&reference)
        .map(|(a, b)| (a.x - b.x).abs().max((a.y - b.y).abs()))
        .fold(0.0, f64::max);
    assert_eq!(max_dev, 0.0, "PPM must match the reference bit-for-bit");
    println!("trajectories identical to the sequential reference ✓");

    let c = report.total_counters();
    println!("simulated time      : {t}");
    println!("remote reads issued : {}", c.remote_gets);
    println!("bundles shipped     : {}", c.bundles_sent);
    println!(
        "bundling factor     : {:.1} reads/message",
        c.remote_gets as f64 / c.bundles_sent.max(1) as f64
    );
    println!("communication waves : {}", c.waves);
    println!("bytes on the wire   : {:.2} MB", c.bytes_sent as f64 / 1e6);

    // Energy-ish sanity: the cluster should stay bound (bodies inside a
    // reasonable radius).
    let r_max = bodies
        .iter()
        .map(|b| (b.x * b.x + b.y * b.y + b.z * b.z).sqrt())
        .fold(0.0, f64::max);
    println!("max radius after run: {r_max:.2} (started ≤ 8)");
}
