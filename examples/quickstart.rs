//! Quickstart: the paper's §5 code example.
//!
//! Given a sorted global array `A` and a node-shared array `B`, find for
//! every element of `B` its insertion point in `A` — one virtual processor
//! per element of `B`, the whole binary search inside a single global
//! phase (every read sees the phase-start snapshot, so the loop of
//! dependent reads is legal; the runtime bundles each round of lookups
//! into one message per owner node).
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ppm::core::{run, PpmConfig};

fn main() {
    let cfg = PpmConfig::franklin(4); // 4 nodes × 4 cores
    let n = 1 << 16; // length of the sorted global array A
    let k = 64; // searches per node

    let report = run(cfg, move |node| {
        // PPM_global_shared double A[n]; PPM_node_shared double B[k], rank_in_A[k];
        let a = node.alloc_global::<f64>(n);
        let b = node.alloc_node::<f64>(k);
        let rank_in_a = node.alloc_node::<u64>(k);

        // Every node initializes the part of A it owns, and its own B.
        let lo = node.local_range(&a).start;
        node.with_local_mut(&a, |s| {
            for (off, v) in s.iter_mut().enumerate() {
                *v = (lo + off) as f64 * 3.0;
            }
        });
        let me = node.node_id() as f64;
        node.with_node_mut(&b, |s| {
            for (i, v) in s.iter_mut().enumerate() {
                *v = me * 1000.0 + i as f64 * 97.3;
            }
        });

        // PPM_do(k) binary_search(n, A, B, rank_in_A);
        node.ppm_do(k, move |vp| async move {
            let i = vp.node_rank();
            vp.global_phase(|ph| async move {
                let key = ph.get_node(&b, i);
                let (mut left, mut right) = (0usize, n);
                while left < right {
                    let middle = (left + right) / 2;
                    if ph.get(&a, middle).await < key {
                        left = middle + 1;
                    } else {
                        right = middle;
                    }
                }
                ph.put_node(&rank_in_a, i, right as u64);
            })
            .await;
        });

        // Check against the closed form and return a sample.
        let sample = node.with_node(&rank_in_a, |ranks| {
            node.with_node(&b, |keys| {
                for (i, (&r, &key)) in ranks.iter().zip(keys).enumerate() {
                    let expect = ((key / 3.0).ceil().max(0.0) as usize).min(n);
                    assert_eq!(r as usize, expect, "search {i} on node {me}");
                }
                (keys[k - 1], ranks[k - 1])
            })
        });
        (node.now(), sample)
    });

    println!(
        "binary search of {} keys in a {}-element global array",
        4 * k,
        n
    );
    for (node, (t, (key, rank))) in report.results.iter().enumerate() {
        println!("  node {node}: e.g. B[last]={key:8.1} -> rank {rank:5}   (local clock {t})");
    }
    println!("simulated makespan: {}", report.makespan());
    println!("all {} searches verified against the closed form", 4 * k);
}
