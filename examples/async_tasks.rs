//! Asynchronous mode (paper §3.3): different nodes work on completely
//! different tasks, each with its own virtual processors and node-level
//! phases, with no cross-node synchronization — then meet again in a
//! collective step.
//!
//! Half the nodes run a prefix-sum pipeline over a node-shared buffer;
//! the other half run a local histogram. Afterwards everyone joins a
//! collective `ppm_do` that combines both results through a global array.
//!
//! ```text
//! cargo run --release --example async_tasks
//! ```

use ppm::core::{AccumOp, PpmConfig};

fn main() {
    let cfg = PpmConfig::franklin(4);
    let n = 1 << 10;

    let report = ppm::core::run(cfg, move |node| {
        let buf = node.alloc_node::<u64>(n);
        let result = node.alloc_global::<u64>(node.num_nodes());
        let me = node.node_id();

        // Fill the node-local working set.
        node.with_node_mut(&buf, |s| {
            for (i, v) in s.iter_mut().enumerate() {
                *v = ((i as u64).wrapping_mul(2654435761) ^ me as u64) % 100;
            }
        });

        if me % 2 == 0 {
            // Task A: Hillis–Steele inclusive prefix sum across VPs, one
            // node phase per doubling round. Entirely node-local.
            node.ppm_do_local(n, move |vp| async move {
                let i = vp.node_rank();
                let mut d = 1;
                while d < n {
                    vp.node_phase(|ph| async move {
                        if i >= d {
                            let a = ph.get_node(&buf, i);
                            let b = ph.get_node(&buf, i - d);
                            ph.put_node(&buf, i, a + b);
                        }
                    })
                    .await;
                    d <<= 1;
                }
            });
        } else {
            // Task B: histogram of the values (16 buckets), then replace
            // the buffer's head with the histogram. Different phase count,
            // different VP count — legal, because nothing is global.
            let hist = node.alloc_node::<u64>(16);
            node.ppm_do_local(64, move |vp| async move {
                let i = vp.node_rank();
                vp.node_phase(|ph| async move {
                    for j in (i..n).step_by(64) {
                        let v = ph.get_node(&buf, j);
                        ph.accumulate_node(&hist, (v % 16) as usize, AccumOp::Add, 1);
                    }
                })
                .await;
                vp.node_phase(|ph| async move {
                    if i < 16 {
                        ph.put_node(&buf, i, ph.get_node(&hist, i));
                    }
                })
                .await;
            });
        }

        // Rendezvous: a collective do publishes each node's summary.
        node.ppm_do(1, move |vp| async move {
            let who = vp.node_id();
            vp.global_phase(|ph| async move {
                let summary = if who % 2 == 0 {
                    ph.get_node(&buf, n - 1) // total of the prefix sum
                } else {
                    (0..16).map(|i| ph.get_node(&buf, i)).sum() // histogram mass
                };
                ph.put(&result, who, summary);
            })
            .await;
        });
        node.gather_global(&result)
    });

    println!("asynchronous tasks on 4 nodes (even: prefix sum, odd: histogram):");
    for (node, summaries) in report.results.iter().enumerate().take(1) {
        for (who, s) in summaries.iter().enumerate() {
            let task = if who % 2 == 0 {
                "prefix-sum total"
            } else {
                "histogram mass "
            };
            println!("  node {who} ({task}) -> {s}");
            let _ = node;
        }
    }
    // Histogram mass must equal the number of sampled elements.
    for summaries in &report.results {
        assert_eq!(summaries[1], n as u64);
        assert_eq!(summaries[3], n as u64);
    }
    println!(
        "histogram masses check out; simulated makespan {}",
        report.makespan()
    );
}
